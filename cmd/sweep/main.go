// Command sweep runs ablation parameter sweeps over the design choices
// DESIGN.md calls out: T2's margin constant and maximum distance, P1's chain
// depth cap, C1's density threshold analogue (via region workloads), and the
// prefetch destination level.
//
//	sweep -what t2margin
//	sweep -what destination -insts 200000
//	sweep -what degree -j 8
//
// Sweeps run on the parallel engine in internal/runner: every sweep point's
// suite goes out as one batch, and the shared run cache simulates the
// no-prefetch baseline once per configuration instead of once per point.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"divlab/internal/mem"
	"divlab/internal/prefetch"
	"divlab/internal/prefetchers"
	"divlab/internal/runner"
	"divlab/internal/sim"
	"divlab/internal/stats"
	"divlab/internal/workloads"
)

func main() {
	var (
		what  = flag.String("what", "degree", "sweep: degree | spp-threshold | bop | destination | mshr-apps")
		insts = flag.Uint64("insts", 150_000, "instructions per run")
		jobs  = flag.Int("j", 0, "parallel simulation workers (0 = GOMAXPROCS, or TPCSIM_WORKERS)")
	)
	flag.Parse()
	if *jobs > 0 {
		runner.Default().SetWorkers(*jobs)
	}

	switch *what {
	case "degree":
		sweepDegree(*insts)
	case "spp-threshold":
		sweepSPP(*insts)
	case "destination":
		sweepDestination(*insts)
	case "mshr-apps":
		perAppMPKI(*insts)
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown -what %q\n", *what)
		os.Exit(2)
	}
}

// geomeanSpeedup runs pf over the SPEC-like suite and returns the geomean
// speedup over no-prefetch. The sweep-point name is the run-cache identity,
// so every distinct configuration must get a distinct name; the baseline
// runs carry the same key at every point and are simulated only once.
func geomeanSpeedup(pf sim.Named, insts uint64) float64 {
	cfg := sim.DefaultConfig(insts)
	apps := workloads.SPEC()
	jobs := make([]runner.Job, 0, 2*len(apps))
	for _, w := range apps {
		jobs = append(jobs,
			runner.Job{Workload: w, Prefetcher: sim.Baseline(), Config: cfg},
			runner.Job{Workload: w, Prefetcher: pf, Config: cfg})
	}
	res := runner.Default().RunBatch(jobs)
	var xs []float64
	for i := 0; i < len(jobs); i += 2 {
		base, r := res[i], res[i+1]
		if base.IPC() > 0 {
			xs = append(xs, r.IPC()/base.IPC())
		}
	}
	return stats.Geomean(xs)
}

func sweepDegree(insts uint64) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "prefetcher\tdegree\tgeomean speedup")
	for _, deg := range []int{1, 2, 4, 8} {
		d := deg
		pf := sim.Named{
			Name:    fmt.Sprintf("sweep:stride-deg=%d", d),
			Factory: func(workloads.Instance) prefetch.Component { return prefetchers.NewStride(mem.L1, 256, d) },
		}
		fmt.Fprintf(tw, "stride\t%d\t%.3f\n", d, geomeanSpeedup(pf, insts))
	}
	for _, deg := range []int{1, 2, 4, 8} {
		d := deg
		pf := sim.Named{
			Name:    fmt.Sprintf("sweep:ampm-deg=%d", d),
			Factory: func(workloads.Instance) prefetch.Component { return prefetchers.NewAMPM(mem.L1, 16, d) },
		}
		fmt.Fprintf(tw, "ampm\t%d\t%.3f\n", d, geomeanSpeedup(pf, insts))
	}
	tw.Flush()
}

func sweepSPP(insts uint64) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "path-confidence threshold\tgeomean speedup")
	for _, th := range []int{10, 25, 50, 75} {
		t := th
		pf := sim.Named{
			Name:    fmt.Sprintf("sweep:spp-th=%d", t),
			Factory: func(workloads.Instance) prefetch.Component { return prefetchers.NewSPP(mem.L1, t, 8) },
		}
		fmt.Fprintf(tw, "%d%%\t%.3f\n", t, geomeanSpeedup(pf, insts))
	}
	tw.Flush()
}

func sweepDestination(insts uint64) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "prefetcher\tdest\tgeomean speedup")
	for _, p := range []struct {
		name string
		mk   func(mem.Level) prefetch.Component
	}{
		{"bop", func(l mem.Level) prefetch.Component { return prefetchers.NewBOP(l) }},
		{"sms", func(l mem.Level) prefetch.Component { return prefetchers.NewSMS(l) }},
		{"ampm", func(l mem.Level) prefetch.Component { return prefetchers.NewAMPM(l, 16, 2) }},
	} {
		for _, lvl := range []mem.Level{mem.L1, mem.L2} {
			mk, l := p.mk, lvl
			pf := sim.Named{
				Name:    fmt.Sprintf("sweep:%s-dest=%s", p.name, l),
				Factory: func(workloads.Instance) prefetch.Component { return mk(l) },
			}
			fmt.Fprintf(tw, "%s\t%s\t%.3f\n", p.name, l, geomeanSpeedup(pf, insts))
		}
	}
	tw.Flush()
}

func perAppMPKI(insts uint64) {
	cfg := sim.DefaultConfig(insts)
	apps := workloads.All()
	jobs := make([]runner.Job, 0, len(apps))
	for _, w := range apps {
		jobs = append(jobs, runner.Job{Workload: w, Prefetcher: sim.Baseline(), Config: cfg})
	}
	res := runner.Default().RunBatch(jobs)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tsuite\tIPC\tL1 MPKI\tL2 misses\ttraffic lines")
	for i, w := range apps {
		r := res[i]
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.1f\t%d\t%d\n", w.Name, w.Suite, r.IPC(), r.MPKI(), r.L2Misses, r.Traffic)
	}
	tw.Flush()
}
