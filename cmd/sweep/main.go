// Command sweep runs ablation parameter sweeps over the design choices
// DESIGN.md calls out: prefetch degree, SPP's confidence threshold, the
// prefetch destination level, and the per-app baseline characterization.
//
// Sweeps are resumable, shardable grid computations over the persistent
// result store (internal/sweep): every grid point has a stable content
// address, finished points are skipped on re-run, in-flight points are
// leased so concurrent processes never duplicate work, and the final report
// is assembled from the store in deterministic grid order — a sweep split
// across shards (or killed and restarted) is byte-identical to a single
// uninterrupted run.
//
//	sweep -what degree -store /tmp/divlab              # run + report
//	sweep -what degree -store /tmp/divlab -shard 0/2   # this half only
//	sweep -what degree -store /tmp/divlab -shard 1/2   # other half (any machine)
//	sweep -what degree -store /tmp/divlab -merge       # assemble the report
//
// Without -store, results live in memory and die with the process (exactly
// the pre-store behaviour). Interrupting a -store run with ^C is safe at any
// moment: re-running completes exactly the remaining points.
//
// Like tpcsim, -json moves the text table to stderr and emits one validated
// divlab.exp/v1 report on stdout, -progress keeps a live counter line on
// stderr, and -pprof serves net/http/pprof.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"
	"time"

	"divlab/internal/mem"
	"divlab/internal/obs"
	"divlab/internal/prefetch"
	"divlab/internal/prefetchers"
	"divlab/internal/runner"
	"divlab/internal/sim"
	"divlab/internal/stats"
	"divlab/internal/store"
	"divlab/internal/sweep"
	"divlab/internal/workloads"
)

func main() {
	var (
		what      = flag.String("what", "degree", "sweep: degree | spp-threshold | destination | mshr-apps")
		insts     = flag.Uint64("insts", 150_000, "instructions per run")
		jobs      = flag.Int("j", 0, "parallel simulation workers (0 = GOMAXPROCS, or TPCSIM_WORKERS)")
		storeDir  = flag.String("store", "", "persistent result store directory (empty: in-memory, dies with the process)")
		shardSpec = flag.String("shard", "", "compute only shard i of n, as i/n (e.g. 0/2); report comes from a later -merge")
		merge     = flag.Bool("merge", false, "skip simulation; assemble the report from the store (errors on missing points)")
		leaseTTL  = flag.Duration("lease-ttl", sweep.DefaultLeaseTTL, "per-point lease expiry (bounds how long a crashed shard blocks a point)")
		jsonOut   = flag.Bool("json", false, "emit a machine-readable JSON report (schema "+obs.SchemaVersion+") on stdout; text moves to stderr")
		progress  = flag.Bool("progress", false, "live progress line (runs, cache hits, sims/sec) on stderr")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if err := run(*what, *insts, *jobs, *storeDir, *shardSpec, *merge, *leaseTTL, *jsonOut, *progress, *pprofAddr); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(what string, insts uint64, jobs int, storeDir, shardSpec string, merge bool, leaseTTL time.Duration, jsonOut, progress bool, pprofAddr string) error {
	g, err := gridFor(what, insts)
	if err != nil {
		return err
	}
	shard, shards, err := parseShard(shardSpec)
	if err != nil {
		return err
	}

	eng := runner.Default()
	if jobs > 0 {
		eng.SetWorkers(jobs)
	}
	var st store.Store
	if storeDir != "" {
		fsStore, err := store.OpenFS(storeDir)
		if err != nil {
			return err
		}
		st = fsStore
		// Job-level results persist too: an interrupted point resumes
		// without re-simulating its finished jobs.
		eng.SetStore(fsStore)
	} else {
		st = store.NewMem()
	}

	if pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "sweep: pprof:", err)
			}
		}()
	}
	if progress {
		p := obs.NewProgress()
		eng.SetProgress(p)
		stop := p.Start(os.Stderr, 500*time.Millisecond)
		defer stop()
	}

	textW := io.Writer(os.Stdout)
	if jsonOut {
		textW = os.Stderr
	}

	if !merge {
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
		sum, err := sweep.Run(ctx, g, sweep.Options{
			Store: st, Engine: eng, Shard: shard, Shards: shards, LeaseTTL: leaseTTL,
		})
		if err != nil {
			if ctx.Err() != nil && storeDir != "" {
				return fmt.Errorf("interrupted after %d points; re-run with the same -store to resume", sum.Computed)
			}
			return err
		}
		fmt.Fprintf(os.Stderr, "sweep: %s: %d computed, %d already stored", g.Name, sum.Computed, sum.Hits)
		if len(sum.Pending) > 0 {
			fmt.Fprintf(os.Stderr, ", %d leased elsewhere (%v)", len(sum.Pending), sum.Pending)
		}
		fmt.Fprintln(os.Stderr)
		if shards > 1 {
			// A shard computes; the report belongs to -merge once every
			// shard is done.
			return nil
		}
		if len(sum.Pending) > 0 {
			return fmt.Errorf("%d points still leased by another process; re-run or -merge once they finish", len(sum.Pending))
		}
	}

	rows, missing, err := sweep.Merge(g, st)
	if err != nil {
		return err
	}
	if len(missing) > 0 {
		return fmt.Errorf("%d of %d points missing from the store (%v): run the remaining shards first", len(missing), len(g.Points), missing)
	}
	if err := g.Render(textW, rows); err != nil {
		return err
	}
	if jsonOut {
		rep, err := sweep.Report(g, rows)
		if err != nil {
			return err
		}
		return obs.EncodeReports(os.Stdout, []*obs.Report{rep})
	}
	return nil
}

// parseShard reads "i/n" (empty: the whole grid).
func parseShard(s string) (shard, shards int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	if _, err := fmt.Sscanf(s, "%d/%d", &shard, &shards); err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/n, e.g. 0/2)", s)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("bad -shard %q: need 0 <= i < n", s)
	}
	return shard, shards, nil
}

func gridFor(what string, insts uint64) (sweep.Grid, error) {
	switch what {
	case "degree":
		return degreeGrid(insts), nil
	case "spp-threshold":
		return sppGrid(insts), nil
	case "destination":
		return destinationGrid(insts), nil
	case "mshr-apps":
		return mshrAppsGrid(insts), nil
	}
	return sweep.Grid{}, fmt.Errorf("unknown -what %q", what)
}

// geomeanPoint builds one sweep point: pf over the SPEC-like suite, reduced
// to the geomean speedup against no-prefetch. The sweep-point name is the
// run-cache identity, so every distinct configuration must carry a distinct
// name; the baseline jobs share one key across every point and simulate (or
// load) once.
func geomeanPoint(id string, pf sim.Named, insts uint64, row obs.Row) sweep.Point {
	cfg := sim.DefaultConfig(insts)
	apps := workloads.SPEC()
	jobs := make([]runner.Job, 0, 2*len(apps))
	for _, w := range apps {
		jobs = append(jobs,
			runner.Job{Workload: w, Prefetcher: sim.Baseline(), Config: cfg},
			runner.Job{Workload: w, Prefetcher: pf, Config: cfg})
	}
	return sweep.Point{
		ID:   id,
		Jobs: jobs,
		Eval: func(res []*sim.Result) []obs.Row {
			var xs []float64
			for i := 0; i < len(res); i += 2 {
				if b := res[i].IPC(); b > 0 {
					xs = append(xs, res[i+1].IPC()/b)
				}
			}
			row.Value = stats.Geomean(xs)
			return []obs.Row{row}
		},
	}
}

func degreeGrid(insts uint64) sweep.Grid {
	var points []sweep.Point
	type variant struct {
		pf  string
		deg int
	}
	var order []variant
	for _, deg := range []int{1, 2, 4, 8} {
		d := deg
		order = append(order, variant{"stride", d})
		points = append(points, geomeanPoint(
			fmt.Sprintf("stride-deg=%d", d),
			sim.Named{
				Name:    fmt.Sprintf("sweep:stride-deg=%d", d),
				Factory: func(workloads.Instance) prefetch.Component { return prefetchers.NewStride(mem.L1, 256, d) },
			},
			insts,
			obs.Row{Prefetcher: "stride", Variant: fmt.Sprintf("degree=%d", d), Metric: "speedup_geomean"},
		))
	}
	for _, deg := range []int{1, 2, 4, 8} {
		d := deg
		order = append(order, variant{"ampm", d})
		points = append(points, geomeanPoint(
			fmt.Sprintf("ampm-deg=%d", d),
			sim.Named{
				Name:    fmt.Sprintf("sweep:ampm-deg=%d", d),
				Factory: func(workloads.Instance) prefetch.Component { return prefetchers.NewAMPM(mem.L1, 16, d) },
			},
			insts,
			obs.Row{Prefetcher: "ampm", Variant: fmt.Sprintf("degree=%d", d), Metric: "speedup_geomean"},
		))
	}
	return sweep.Grid{
		Name: "degree", Insts: insts, Points: points,
		Render: func(w io.Writer, rows [][]obs.Row) error {
			tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "prefetcher\tdegree\tgeomean speedup")
			for i, v := range order {
				fmt.Fprintf(tw, "%s\t%d\t%.3f\n", v.pf, v.deg, rows[i][0].Value)
			}
			return tw.Flush()
		},
	}
}

func sppGrid(insts uint64) sweep.Grid {
	ths := []int{10, 25, 50, 75}
	var points []sweep.Point
	for _, th := range ths {
		t := th
		points = append(points, geomeanPoint(
			fmt.Sprintf("spp-th=%d", t),
			sim.Named{
				Name:    fmt.Sprintf("sweep:spp-th=%d", t),
				Factory: func(workloads.Instance) prefetch.Component { return prefetchers.NewSPP(mem.L1, t, 8) },
			},
			insts,
			obs.Row{Prefetcher: "spp", Variant: fmt.Sprintf("threshold=%d", t), Metric: "speedup_geomean"},
		))
	}
	return sweep.Grid{
		Name: "spp-threshold", Insts: insts, Points: points,
		Render: func(w io.Writer, rows [][]obs.Row) error {
			tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "path-confidence threshold\tgeomean speedup")
			for i, t := range ths {
				fmt.Fprintf(tw, "%d%%\t%.3f\n", t, rows[i][0].Value)
			}
			return tw.Flush()
		},
	}
}

func destinationGrid(insts uint64) sweep.Grid {
	type cell struct {
		name string
		lvl  mem.Level
	}
	var order []cell
	var points []sweep.Point
	for _, p := range []struct {
		name string
		mk   func(mem.Level) prefetch.Component
	}{
		{"bop", func(l mem.Level) prefetch.Component { return prefetchers.NewBOP(l) }},
		{"sms", func(l mem.Level) prefetch.Component { return prefetchers.NewSMS(l) }},
		{"ampm", func(l mem.Level) prefetch.Component { return prefetchers.NewAMPM(l, 16, 2) }},
	} {
		for _, lvl := range []mem.Level{mem.L1, mem.L2} {
			mk, l := p.mk, lvl
			order = append(order, cell{p.name, l})
			points = append(points, geomeanPoint(
				fmt.Sprintf("%s-dest=%s", p.name, l),
				sim.Named{
					Name:    fmt.Sprintf("sweep:%s-dest=%s", p.name, l),
					Factory: func(workloads.Instance) prefetch.Component { return mk(l) },
				},
				insts,
				obs.Row{Prefetcher: p.name, Variant: l.String(), Metric: "speedup_geomean"},
			))
		}
	}
	return sweep.Grid{
		Name: "destination", Insts: insts, Points: points,
		Render: func(w io.Writer, rows [][]obs.Row) error {
			tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "prefetcher\tdest\tgeomean speedup")
			for i, c := range order {
				fmt.Fprintf(tw, "%s\t%s\t%.3f\n", c.name, c.lvl, rows[i][0].Value)
			}
			return tw.Flush()
		},
	}
}

func mshrAppsGrid(insts uint64) sweep.Grid {
	cfg := sim.DefaultConfig(insts)
	apps := workloads.All()
	points := make([]sweep.Point, 0, len(apps))
	for _, app := range apps {
		w := app
		points = append(points, sweep.Point{
			ID:   "app=" + w.Name,
			Jobs: []runner.Job{{Workload: w, Prefetcher: sim.Baseline(), Config: cfg}},
			Eval: func(res []*sim.Result) []obs.Row {
				r := res[0]
				return []obs.Row{
					{Workload: w.Name, Metric: "ipc", Value: r.IPC()},
					{Workload: w.Name, Metric: "l1_mpki", Value: r.MPKI()},
					{Workload: w.Name, Metric: "l2_misses", Value: float64(r.L2Misses)},
					{Workload: w.Name, Metric: "traffic_lines", Value: float64(r.Traffic)},
				}
			},
		})
	}
	return sweep.Grid{
		Name: "mshr-apps", Insts: insts, Points: points,
		Render: func(w io.Writer, rows [][]obs.Row) error {
			tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "workload\tsuite\tIPC\tL1 MPKI\tL2 misses\ttraffic lines")
			for i, app := range apps {
				r := rows[i]
				fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.1f\t%d\t%d\n",
					app.Name, app.Suite, r[0].Value, r[1].Value, uint64(r[2].Value), uint64(r[3].Value))
			}
			return tw.Flush()
		},
	}
}
