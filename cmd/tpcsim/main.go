// Command tpcsim reproduces the paper's evaluation. It can run a single
// (workload, prefetcher) pair, or regenerate any table/figure experiment:
//
//	tpcsim -list
//	tpcsim -exp fig8
//	tpcsim -exp all -insts 500000
//	tpcsim -exp all -j 8
//	tpcsim -workload chase.rand -prefetcher tpc
//
// Experiments run on the parallel engine in internal/runner: -j bounds the
// worker pool (default GOMAXPROCS or $TPCSIM_WORKERS) and a memoized run
// cache shares the no-prefetch baseline across experiments. Reports are
// byte-identical at any -j.
package main

import (
	"flag"
	"fmt"
	"os"

	"divlab/internal/exp"
	"divlab/internal/sim"
	"divlab/internal/workloads"
)

func main() {
	var (
		expName  = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		list     = flag.Bool("list", false, "list experiments and workloads")
		workload = flag.String("workload", "", "single workload to run")
		pf       = flag.String("prefetcher", "tpc", "prefetcher for -workload (none, tpc, t2, bop, sms, ...)")
		insts    = flag.Uint64("insts", 300_000, "instructions per simulation")
		seed     = flag.Uint64("seed", 1, "workload/controller seed")
		mixes    = flag.Int("mixes", 8, "number of 4-core mixes for multicore experiments")
		useBPred = flag.Bool("bpred", false, "use the TAGE + loop predictor instead of workload mispredict flags (single-workload mode)")
		jobs     = flag.Int("j", 0, "parallel simulation workers (0 = GOMAXPROCS, or TPCSIM_WORKERS)")
	)
	flag.Parse()

	switch {
	case *list:
		fmt.Println("experiments:")
		for _, n := range exp.Names() {
			fmt.Printf("  %-12s %s\n", n, exp.Describe(n))
		}
		fmt.Println("workloads:")
		for _, w := range workloads.All() {
			fmt.Printf("  %-16s (%s)\n", w.Name, w.Suite)
		}
	case *expName != "":
		o := exp.Options{Insts: *insts, Seed: *seed, MixCount: *mixes, Workers: *jobs}
		var err error
		if *expName == "all" {
			err = exp.RunAll(os.Stdout, o)
		} else {
			err = exp.Run(*expName, os.Stdout, o)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tpcsim:", err)
			os.Exit(1)
		}
	case *workload != "":
		w, ok := workloads.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "tpcsim: unknown workload %q\n", *workload)
			os.Exit(1)
		}
		cfg := sim.DefaultConfig(*insts)
		cfg.Seed = *seed
		cfg.UseBPred = *useBPred
		base := sim.RunSingle(w, nil, cfg)
		fmt.Printf("%s baseline: IPC=%.3f MPKI=%.1f misses=%d traffic=%d lines\n",
			w.Name, base.IPC(), base.MPKI(), base.L1Misses, base.Traffic)
		if *pf != "none" {
			n, ok := sim.ByName(*pf)
			if !ok {
				fmt.Fprintf(os.Stderr, "tpcsim: unknown prefetcher %q\n", *pf)
				os.Exit(1)
			}
			r := sim.RunSingle(w, n.Factory, cfg)
			fmt.Printf("%s %s: IPC=%.3f speedup=%.3f misses=%d issued=%d traffic=%d lines\n",
				w.Name, n.Name, r.IPC(), r.IPC()/base.IPC(), r.L1Misses, r.Issued, r.Traffic)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
