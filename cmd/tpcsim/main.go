// Command tpcsim reproduces the paper's evaluation. It can run a single
// (workload, prefetcher) pair, or regenerate any table/figure experiment:
//
//	tpcsim -list
//	tpcsim -exp fig8
//	tpcsim -exp all -insts 500000
//	tpcsim -exp speedups -json -lifecycle > report.json
//	tpcsim -workload chase.rand -prefetcher tpc
//	tpcsim -workload chase.rand -prefetcher ghb:entries=512,degree=8 -trace 20
//	tpcsim -validate report.json
//
// Experiments run on the parallel engine in internal/runner: -j bounds the
// worker pool (default GOMAXPROCS or $TPCSIM_WORKERS) and a memoized run
// cache shares the no-prefetch baseline across experiments. Reports are
// byte-identical at any -j.
//
// With -json, stdout carries only the machine-readable report (schema
// divlab.exp/v1, one JSON object per experiment in an array) and the text
// report moves to stderr, so `tpcsim -exp speedups -json | jq .` works.
// -lifecycle turns on ground-truth prefetch-lifecycle tracing; the traced
// counters appear in the JSON report and are checked for conservation
// (attempted = deduped + dropped + installed; installed = hit + evicted +
// resident) before the report is emitted.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"divlab/internal/exp"
	"divlab/internal/obs"
	"divlab/internal/runner"
	"divlab/internal/sim"
	"divlab/internal/store"
	"divlab/internal/workloads"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpcsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expName   = flag.String("exp", "", "experiment to run (see -list), or 'all'")
		list      = flag.Bool("list", false, "list experiments, prefetchers and workloads")
		workload  = flag.String("workload", "", "single workload to run")
		pf        = flag.String("prefetcher", "tpc", "prefetcher spec for -workload (none, tpc, bop, ghb:entries=512,degree=8, tpc+bop, ...)")
		insts     = flag.Uint64("insts", 300_000, "instructions per simulation")
		seed      = flag.Uint64("seed", 1, "workload/controller seed")
		mixes     = flag.Int("mixes", 8, "number of 4-core mixes for multicore experiments")
		useBPred  = flag.Bool("bpred", false, "use the TAGE + loop predictor instead of workload mispredict flags (single-workload mode)")
		jobs      = flag.Int("j", 0, "parallel simulation workers (0 = GOMAXPROCS, or TPCSIM_WORKERS)")
		jsonOut   = flag.Bool("json", false, "emit a machine-readable JSON report (schema "+obs.SchemaVersion+") on stdout; text moves to stderr")
		lifecycle = flag.Bool("lifecycle", false, "trace prefetch lifecycles (ground-truth counters in reports)")
		traceN    = flag.Int("trace", 0, "single-workload mode: print the first N lifecycle events")
		progress  = flag.Bool("progress", false, "live progress line (runs, cache hits, sims/sec) on stderr")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		validate  = flag.String("validate", "", "validate a JSON report file and exit")
		storeDir  = flag.String("store", "", "persistent result store directory (read-through/write-behind below the run cache)")
		keyOnly   = flag.Bool("key", false, "print the content address (canonical key + digest) for -workload/-prefetcher and exit")
	)
	flag.Parse()

	if *storeDir != "" {
		fsStore, err := store.OpenFS(*storeDir)
		if err != nil {
			return err
		}
		runner.Default().SetStore(fsStore)
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "tpcsim: pprof:", err)
			}
		}()
	}

	switch {
	case *validate != "":
		return validateReport(*validate)
	case *list:
		printList(os.Stdout)
		return nil
	case *keyOnly:
		return printKey(*workload, *pf, *insts, *seed, *useBPred)
	case *expName != "":
		err := runExperiments(*expName, exp.Options{
			Insts: *insts, Seed: *seed, MixCount: *mixes,
			Workers: *jobs, Lifecycle: *lifecycle || *jsonOut,
		}, *jsonOut, *progress)
		if *storeDir != "" && err == nil {
			e := runner.Default()
			cacheHits, _ := e.Stats()
			s := e.StoreStats()
			fmt.Fprintf(os.Stderr, "store: jobs=%d cache-hits=%d store-hits=%d sims=%d puts=%d errs=%d\n",
				e.Jobs(), cacheHits, s.Hits, e.Sims(), s.Puts, s.Errs)
		}
		return err
	case *workload != "":
		return runWorkload(*workload, *pf, *insts, *seed, *useBPred, *traceN, *jsonOut)
	default:
		flag.Usage()
		os.Exit(2)
		return nil
	}
}

func printList(w io.Writer) {
	fmt.Fprintln(w, "experiments:")
	for _, n := range exp.Names() {
		fmt.Fprintf(w, "  %-12s %s\n", n, exp.Describe(n))
	}
	fmt.Fprintln(w, "prefetchers (spec grammar: name[:k=v,...] | tpc+name | shunt+name):")
	for _, p := range sim.List() {
		name := p.Name
		if len(p.Aliases) > 0 {
			name += " (" + strings.Join(p.Aliases, ", ") + ")"
		}
		fmt.Fprintf(w, "  %-16s %s\n", name, p.Desc)
		if len(p.Params) > 0 {
			fmt.Fprintf(w, "  %-16s params: %s\n", "", strings.Join(p.Params, ", "))
		}
	}
	fmt.Fprintln(w, "workloads:")
	for _, wl := range workloads.All() {
		fmt.Fprintf(w, "  %-16s (%s)\n", wl.Name, wl.Suite)
	}
}

// runExperiments executes one experiment (or all) through a sink. With JSON
// output the text report moves to stderr and stdout carries the report array.
func runExperiments(name string, o exp.Options, jsonOut, progress bool) error {
	textW := io.Writer(os.Stdout)
	if jsonOut {
		textW = os.Stderr
	}
	s := exp.NewSink(textW, jsonOut)

	if progress {
		p := obs.NewProgress()
		eng := runner.Default()
		if o.Engine != nil {
			eng = o.Engine
		}
		eng.SetProgress(p)
		stop := p.Start(os.Stderr, 500*time.Millisecond)
		defer func() {
			stop()
			eng.SetProgress(nil)
		}()
	}

	var err error
	if name == "all" {
		err = exp.RunAll(s, o)
	} else {
		err = exp.Run(name, s, o)
	}
	if err != nil {
		return err
	}
	if jsonOut {
		return obs.EncodeReports(os.Stdout, s.Reports)
	}
	return nil
}

// runWorkload runs one (workload, prefetcher) pair, optionally tracing
// lifecycle events and emitting a small JSON report.
func runWorkload(workload, pfSpec string, insts, seed uint64, useBPred bool, traceN int, jsonOut bool) error {
	w, ok := workloads.ByName(workload)
	if !ok {
		return fmt.Errorf("unknown workload %q", workload)
	}
	cfg := sim.DefaultConfig(insts)
	cfg.Seed = seed
	cfg.UseBPred = useBPred

	textW := io.Writer(os.Stdout)
	if jsonOut {
		textW = os.Stderr
	}

	base := sim.RunSingle(w, nil, cfg)
	fmt.Fprintf(textW, "%s baseline: IPC=%.3f MPKI=%.1f misses=%d traffic=%d lines\n",
		w.Name, base.IPC(), base.MPKI(), base.L1Misses, base.Traffic)

	report := obs.NewReport("workload", "single (workload, prefetcher) run",
		obs.RunConfig{Insts: insts, Seed: seed})
	report.AddRow(obs.Row{Workload: w.Name, Prefetcher: "none", Metric: "ipc", Value: base.IPC()})

	if pfSpec != "none" {
		n, err := sim.ByName(pfSpec)
		if err != nil {
			return err
		}
		pfCfg := cfg
		var tracer *obs.TextTracer
		if traceN > 0 || jsonOut {
			pfCfg.TraceLifecycle = true
			if traceN > 0 {
				tracer = obs.NewTextTracer(textW, nil, uint64(traceN))
				pfCfg.TraceSink = tracer
			}
		}
		r := sim.RunSingle(w, n.Factory, pfCfg)
		if tracer != nil {
			if err := tracer.Err(); err != nil {
				return err
			}
		}
		fmt.Fprintf(textW, "%s %s: IPC=%.3f speedup=%.3f misses=%d issued=%d traffic=%d lines\n",
			w.Name, n.Name, r.IPC(), r.IPC()/base.IPC(), r.L1Misses, r.Issued, r.Traffic)
		report.AddRow(obs.Row{Workload: w.Name, Prefetcher: n.Name, Metric: "ipc", Value: r.IPC()})
		report.AddRow(obs.Row{Workload: w.Name, Prefetcher: n.Name, Metric: "speedup", Value: r.IPC() / base.IPC()})
		if lc := r.Lifecycle; lc != nil {
			t := lc.Totals()
			fmt.Fprintf(textW, "lifecycle: attempted=%d deduped=%d dropped(mshr)=%d dropped(dram)=%d installed=%d hit=%d evicted=%d resident=%d\n",
				t.Attempted, t.Deduped, t.DroppedMSHR, t.DroppedDRAM,
				t.InstalledTotal(), t.DemandHitsTotal(), t.EvictedTotal(), t.ResidentTotal())
			b := obs.LifecycleBlock{Workload: w.Name, Prefetcher: n.Name, Total: t.Flatten()}
			for id := 0; id <= lc.Owners(); id++ {
				c := lc.Counts(id)
				if (c == obs.OwnerCounts{}) {
					continue
				}
				b.PerOwner = append(b.PerOwner, obs.OwnerLifecycle{Owner: id, Name: r.Names[id], LifecycleCounts: c.Flatten()})
			}
			report.AddLifecycle(b)
			if err := lc.Check(); err != nil {
				return fmt.Errorf("lifecycle conservation violated: %w", err)
			}
		}
	}
	if jsonOut {
		if err := report.Validate(); err != nil {
			return err
		}
		return obs.EncodeReports(os.Stdout, []*obs.Report{report})
	}
	return nil
}

// printKey prints the content address — the canonical versioned key text and
// its SHA-256 digest — that the engine and persistent store would use for the
// given (workload, prefetcher) run. Useful for locating a run's record in a
// store directory or checking what a config change does to run identity.
func printKey(workload, pfSpec string, insts, seed uint64, useBPred bool) error {
	if workload == "" {
		return fmt.Errorf("-key needs -workload (and optionally -prefetcher)")
	}
	w, ok := workloads.ByName(workload)
	if !ok {
		return fmt.Errorf("unknown workload %q", workload)
	}
	cfg := sim.DefaultConfig(insts)
	cfg.Seed = seed
	cfg.UseBPred = useBPred
	j := runner.Job{Workload: w, Config: cfg}
	if pfSpec != "" && pfSpec != "none" {
		n, err := sim.ByName(pfSpec)
		if err != nil {
			return err
		}
		j.Prefetcher = n
	}
	k, ok := runner.KeyOf(j)
	if !ok {
		return fmt.Errorf("job is uncacheable (no stable key)")
	}
	fmt.Print(k.Canonical())
	fmt.Println("digest=" + k.Digest())
	return nil
}

// validateReport decodes and validates a report file written with -json.
func validateReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	reports, err := obs.DecodeReports(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for _, r := range reports {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("%s: experiment %s: %w", path, r.Experiment, err)
		}
	}
	fmt.Printf("%s: %d report(s) valid (%s)\n", path, len(reports), obs.SchemaVersion)
	return nil
}
