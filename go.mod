module divlab

go 1.22
